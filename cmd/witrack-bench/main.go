// Command witrack-bench regenerates every table and figure of the
// paper's evaluation (§8-§9) and prints paper-vs-measured rows. At
// -scale paper the workloads match the paper's (100 one-minute runs per
// accuracy figure, 132 fall experiments, ~100 gestures); -scale quick
// runs a reduced version in about a minute.
//
// Usage:
//
//	witrack-bench [-scale quick|paper] [-only E4,E7,...] [-seed 1] [-json BENCH_pipeline.json]
//	              [-baseline BENCH_pipeline.json] [-max-regress 0.20]
//
// With -json the headline metrics — pipeline frames/sec, allocs/frame,
// the time-domain sweep path numbers, and every per-experiment row — are
// also written to the given path as JSON. The checked-in
// BENCH_pipeline.json is the fixed baseline the CI bench gate compares
// against; regenerate it deliberately after perf-relevant changes (CI
// writes its fresh measurements to BENCH_new.json and uploads that as
// an artifact, leaving the baseline untouched).
//
// With -baseline the freshly measured pipeline throughput is compared
// against a previously written report: any frames/sec metric more than
// -max-regress (default 20%) below the baseline fails the run with exit
// status 1 — the CI bench-regression gate. Allocation-rate metrics are
// compared too (they are schedule-independent, so the bound is tight).
// Reports stamp the measuring host's CPU model; when the baseline was
// measured on a different host (or carries no stamp) the wall-clock
// fps floors are downgraded to warnings, while the +1 alloc/frame
// ceiling stays hard — clock speed varies by machine class, allocation
// counts do not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"witrack/internal/experiments"
	"witrack/internal/motion"
)

// reportRow is one printed paper-vs-measured row, as serialized by -json.
type reportRow struct {
	Label    string `json:"label"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
}

// report is the -json artifact.
type report struct {
	Scale       string                                `json:"scale"`
	Seed        int64                                 `json:"seed"`
	GeneratedAt string                                `json:"generated_at"`
	GoMaxProcs  int                                   `json:"gomaxprocs"`
	CPUModel    string                                `json:"cpu_model,omitempty"`
	Pipeline    *experiments.PipelineThroughputResult `json:"pipeline,omitempty"`
	Experiments map[string][]reportRow                `json:"experiments"`
	TotalSecs   float64                               `json:"total_seconds"`
}

// cpuModel identifies the measuring host's CPU: the baseline provenance
// the bench gate uses to decide whether wall-clock throughput floors are
// comparable. Falls back to GOOS/GOARCH when /proc/cpuinfo is absent
// (non-Linux hosts).
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// collector accumulates rows under the current section for -json output.
var collector = struct {
	section string
	rows    map[string][]reportRow
}{rows: map[string][]reportRow{}}

func main() {
	scaleName := flag.String("scale", "quick", "workload scale: quick, mid, or paper")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	seed := flag.Int64("seed", 1, "base seed")
	jsonPath := flag.String("json", "", "also write headline metrics to this path as JSON")
	baselinePath := flag.String("baseline", "", "compare pipeline throughput against this earlier -json report")
	maxRegress := flag.Float64("max-regress", 0.20, "fail when throughput falls this fraction below -baseline")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "witrack-bench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		fmt.Fprintf(os.Stderr, "witrack-bench: -max-regress must be in [0, 1), got %g\n", *maxRegress)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scaleName {
	case "quick":
		sc = experiments.QuickScale()
	case "mid":
		sc = experiments.Scale{Runs: 24, Duration: 40, Gestures: 40, ActivityReps: 12}
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintln(os.Stderr, "witrack-bench: -scale must be quick, mid, or paper")
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("WiTrack evaluation harness — scale=%s seed=%d\n", *scaleName, *seed)
	fmt.Printf("(paper numbers from MIT-CSAIL-TR-2013-030 / NSDI'14)\n\n")
	start := time.Now()

	if run("E1") {
		r, err := experiments.Resolution(*seed)
		check(err)
		section("E1  FMCW resolution (Eq. 3)")
		row("one-way resolution", "8.8 cm", fmt.Sprintf("%.1f cm theory, %.1f cm measured two-tone", r.TheoreticalResolution*100, r.MeasuredSeparability*100))
	}

	if run("E2") {
		sr, err := experiments.SpectrogramDemo(*seed)
		check(err)
		before, after := experiments.StaticStripePersistence(sr)
		section("E2  Fig.3 spectrogram pipeline")
		row("static-stripe energy fraction", "dominant before, gone after subtraction",
			fmt.Sprintf("%.2f raw -> %.3f subtracted", before, after))
		row("frames", "-", fmt.Sprintf("%d frames, %d range bins", len(sr.Raw.Frames), len(sr.Raw.Frames[0])))
	}

	if run("E3") {
		r, err := experiments.Accuracy3D(false, sc, *seed)
		check(err)
		x, y, z := r.Errors.Medians()
		px, py, pz := r.Errors.P90s()
		section("E3  Fig.8(a) line-of-sight 3D accuracy")
		row("median x/y/z", "9.9 / 8.6 / 17.7 cm", fmt.Sprintf("%.1f / %.1f / %.1f cm", x*100, y*100, z*100))
		row("90th pct x/y/z", "-", fmt.Sprintf("%.1f / %.1f / %.1f cm", px*100, py*100, pz*100))
		row("samples", "~480,000", fmt.Sprintf("%d", r.Samples))
	}

	if run("E4") {
		r, err := experiments.Accuracy3D(true, sc, *seed)
		check(err)
		x, y, z := r.Errors.Medians()
		px, py, pz := r.Errors.P90s()
		section("E4  Fig.8(b) through-wall 3D accuracy")
		row("median x/y/z", "13.1 / 10.25 / 21.0 cm", fmt.Sprintf("%.1f / %.1f / %.1f cm", x*100, y*100, z*100))
		row("90th pct x/y/z", "<= ~1ft / ~1ft / ~2ft", fmt.Sprintf("%.1f / %.1f / %.1f cm", px*100, py*100, pz*100))
		row("samples", "~480,000", fmt.Sprintf("%d", r.Samples))
	}

	if run("E5") {
		bins, err := experiments.AccuracyVsDistance(sc, *seed)
		check(err)
		section("E5  Fig.9 accuracy vs distance (through-wall)")
		for _, b := range bins {
			x, y, z := b.Errors.Medians()
			px, py, pz := b.Errors.P90s()
			row(fmt.Sprintf("%d m median (p90)", b.Meters), "grows 5-10 cm from 3 m to 11 m",
				fmt.Sprintf("x %.0f (%.0f), y %.0f (%.0f), z %.0f (%.0f) cm", x*100, px*100, y*100, py*100, z*100, pz*100))
		}
	}

	if run("E6") {
		pts, err := experiments.AccuracyVsSeparation([]float64{0.25, 0.5, 1.0, 1.5, 2.0}, sc, *seed)
		check(err)
		section("E6  Fig.10 accuracy vs antenna separation")
		for _, p := range pts {
			x, y, z := p.Errors.Medians()
			row(fmt.Sprintf("separation %.2f m", p.Separation),
				"@25cm medians <=17/12/31 cm; error shrinks with separation",
				fmt.Sprintf("x %.1f, y %.1f, z %.1f cm", x*100, y*100, z*100))
		}
	}

	if run("E7") {
		r, err := experiments.Pointing(sc, *seed)
		check(err)
		section("E7  Fig.11 pointing-direction accuracy")
		row("median / 90th pct", "11.2 / 37.9 deg", fmt.Sprintf("%.1f / %.1f deg (%d/%d gestures analyzed)",
			r.Median(), r.P90(), r.Analyzed, r.Attempted))
	}

	if run("E8") {
		gc, err := experiments.GestureDemo(*seed)
		check(err)
		section("E8  Fig.5 arm vs whole-body contrast")
		row("reflected power ratio body/arm", ">> 1 (arm reflection surface much smaller)",
			fmt.Sprintf("%.1fx", gc.BodyPower/gc.ArmPower))
		row("spatial spread body vs arm", "body variance >> arm variance",
			fmt.Sprintf("%.2f m vs %.2f m", gc.BodySpread, gc.ArmSpread))
	}

	if run("E9") {
		traces, err := experiments.ElevationTraces(*seed)
		check(err)
		section("E9  Fig.6 elevation traces")
		for _, tr := range traces {
			if len(tr.Z) == 0 {
				continue
			}
			final := tr.Z[len(tr.Z)-1]
			truth := tr.TruthZ[len(tr.TruthZ)-1]
			row(tr.Activity.String(), "walk/chair end high; floor-sit and fall end near ground",
				fmt.Sprintf("final z %.2f m (truth %.2f m)", final, truth))
		}
	}

	if run("E10") {
		r, err := experiments.FallStudy(sc, *seed)
		check(err)
		section("E10 §9.5 fall detection")
		for _, act := range motion.Activities() {
			row("classified as fall: "+act.String(), paperFallRow(act),
				fmt.Sprintf("%d / %d", r.Detected[act], r.Total[act]))
		}
		row("precision / recall / F", "96.9% / 93.9% / 94.4%",
			fmt.Sprintf("%.1f%% / %.1f%% / %.1f%%", r.Precision*100, r.Recall*100, r.FMeasure*100))
	}

	if run("E11") {
		r, err := experiments.Latency(*seed)
		check(err)
		section("E11 §7 real-time latency")
		row("processing per 3D output", "< 75 ms", fmt.Sprintf("%v (%.0f frames/s possible)", r.PerFrame, r.FramesPerSec))
	}

	if run("E12") {
		r, err := experiments.VsRTI(sc, *seed)
		check(err)
		section("E12 §2 2D accuracy vs radio tomography")
		row("median 2D error", ">= 5x better than RTI", fmt.Sprintf("WiTrack %.2f m vs RTI %.2f m (%.1fx)",
			r.WiTrackMedian2D, r.RTIMedian2D, r.Ratio))
	}

	if run("A1") {
		r, err := experiments.AblationContourVsPeak(sc, *seed)
		check(err)
		section("A1  ablation: contour vs strongest peak (§4.3)")
		row("median 3D error", "contour more robust than dominant-frequency tracking",
			fmt.Sprintf("contour %.2f m vs strongest %.2f m", r.ContourMedian3D, r.StrongestMedian3D))
	}

	if run("A2") {
		r, err := experiments.AblationDenoising(sc, *seed)
		check(err)
		section("A2  ablation: §4.4 denoising stages")
		row("median 3D error", "-", fmt.Sprintf("full %.2f m; no-Kalman %.2f m; loose gate %.2f m",
			r.FullMedian3D, r.NoKalmanMedian3D, r.LooseGateMedian3D))
	}

	if run("A3") {
		r, err := experiments.AblationExtraAntennas(sc, *seed)
		check(err)
		section("A3  ablation: 3 vs 4 receive antennas (§5)")
		row("median 3D error", "extra antennas add robustness",
			fmt.Sprintf("3 Rx %.2f m vs 4 Rx %.2f m", r.ThreeRxMedian3D, r.FourRxMedian3D))
	}

	if run("X1") {
		r, err := experiments.StaticUser(*seed)
		check(err)
		section("X1  §10 extension: static user via background calibration")
		row("valid-fix fraction", "0 without calibration (the stated limitation)",
			fmt.Sprintf("%.2f uncalibrated vs %.2f calibrated (median err %.2f m)",
				r.ValidFracUncalibrated, r.ValidFracCalibrated, r.MedianErrCalibrated))
	}

	if run("X2") {
		r, err := experiments.TwoPerson(sc.Duration, *seed+17)
		check(err)
		section("X2  §10 extension: two concurrent people")
		row("per-person median 2D error", "proposed, not evaluated in the paper",
			fmt.Sprintf("%.2f m (%.0f%% frames with a joint fix; run-to-run variance is high — see EXPERIMENTS.md)", r.MedianErr2D, r.ValidFrac*100))
	}

	var pipeline *experiments.PipelineThroughputResult
	if run("X3") {
		r, err := experiments.PipelineThroughput(sc.Duration, *seed)
		check(err)
		pipeline = r
		section("X3  staged pipeline throughput (§7 multicore analog)")
		hostNote := ""
		if r.SerializedHost {
			// One schedulable CPU: every "speedup" below measures pipeline
			// overhead, not parallel scaling — say so instead of printing
			// a misleading 0.99x.
			hostNote = " (serialized host)"
		}
		row("frames/sec serial vs parallel", "pipeline keeps up with the 80 frames/s radio",
			fmt.Sprintf("%.0f fps (1 worker) vs %.0f fps (%d workers, %.2fx on %d CPUs)%s",
				r.SerialFPS, r.ParallelFPS, r.Workers, r.Speedup, runtime.GOMAXPROCS(0), hostNote))
		row("allocs/frame (fast path)", "-", fmt.Sprintf("%.2f", r.AllocsPerFrame))
		row("time-domain sweep path", "per-sweep windowed FFT processing (§7)",
			fmt.Sprintf("%.0f fps, %.2f allocs/frame", r.TimeDomainFPS, r.TimeDomainAllocsPerFrame))
		row("time-domain float32 path", "-",
			fmt.Sprintf("%.0f fps, %.2f allocs/frame", r.Float32TimeDomainFPS, r.Float32TimeDomainAllocsPerFrame))
		row("float32 spectrum error", "within the plan's analytic bound",
			fmt.Sprintf("%.3g of peak (bound %.3g)", r.Float32MaxError, r.Float32ErrorBound))
		row("int16 replay path", "quantized traces replay faster than float32 synthesis",
			fmt.Sprintf("%.0f fps, %.2f allocs/frame, %.0f bytes/frame",
				r.Int16ReplayFPS, r.Int16ReplayAllocsPerFrame, r.Int16BytesPerFrame))
		row("int16 quantization error", "within the ADC's analytic bound",
			fmt.Sprintf("%.3g per bin (bound %.3g)", r.Int16MaxError, r.Int16ErrorBound))
		for _, p := range r.SpeedupCurve {
			row(fmt.Sprintf("scaling @ GOMAXPROCS=%d, %d workers", p.GOMAXPROCS, p.Workers),
				"throughput scales with workers on multicore hosts",
				fmt.Sprintf("%.0f fps, %.2fx%s", p.FPS, p.Speedup, hostNote))
		}
	}

	total := time.Since(start)
	fmt.Printf("\ntotal runtime: %v\n", total.Round(time.Millisecond))

	if *jsonPath != "" {
		rep := report{
			Scale:       *scaleName,
			Seed:        *seed,
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			CPUModel:    cpuModel(),
			Pipeline:    pipeline,
			Experiments: collector.rows,
			TotalSecs:   total.Seconds(),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *baselinePath != "" {
		check(compareBaseline(*baselinePath, pipeline, *maxRegress))
	}
}

// compareBaseline gates the measured pipeline numbers against an
// earlier report: throughput may not fall more than maxRegress below
// the baseline, and the allocation rate may not grow by more than one
// alloc/frame (allocs are schedule-independent, so that bound is a
// hard regression signal, not noise).
//
// Wall-clock floors only make sense against a baseline measured on the
// same machine class, so the baseline's stamped cpu_model is compared
// against this host's: on a mismatch (or a baseline without a stamp)
// the fps floors are downgraded to warnings, while the allocation
// ceiling stays a hard failure on any host.
func compareBaseline(path string, current *experiments.PipelineThroughputResult, maxRegress float64) error {
	if current == nil {
		return fmt.Errorf("-baseline needs the X3 pipeline experiment (add X3 to -only)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Pipeline == nil {
		return fmt.Errorf("baseline %s has no pipeline metrics", path)
	}
	host := cpuModel()
	sameHost := base.CPUModel != "" && base.CPUModel == host
	if !sameHost {
		fmt.Printf("bench gate: baseline host %q != this host %q — fps floors warn instead of fail\n",
			orUnknown(base.CPUModel), host)
	}
	var failures []string
	throughput := func(label string, got, want float64) {
		floor := want * (1 - maxRegress)
		status := "ok"
		if got < floor {
			if sameHost {
				status = "REGRESSION"
				failures = append(failures, label)
			} else {
				status = "WARNING (host mismatch; not gating)"
			}
		}
		fmt.Printf("bench gate: %-22s %10.0f vs baseline %10.0f (floor %10.0f)  %s\n",
			label, got, want, floor, status)
	}
	throughput("serial fps", current.SerialFPS, base.Pipeline.SerialFPS)
	throughput("parallel fps", current.ParallelFPS, base.Pipeline.ParallelFPS)
	throughput("time-domain fps", current.TimeDomainFPS, base.Pipeline.TimeDomainFPS)
	allocs := func(label string, got, want float64) {
		status := "ok"
		if got > want+1 {
			status = "REGRESSION"
			failures = append(failures, label)
		}
		fmt.Printf("bench gate: %-22s %10.2f vs baseline %10.2f (ceiling %8.2f)  %s\n",
			label, got, want, want+1, status)
	}
	allocs("allocs/frame", current.AllocsPerFrame, base.Pipeline.AllocsPerFrame)
	allocs("time-domain allocs", current.TimeDomainAllocsPerFrame, base.Pipeline.TimeDomainAllocsPerFrame)
	if base.Pipeline.Float32TimeDomainFPS > 0 {
		// Baselines written before the float32 path existed carry zeros
		// here; gate only against a baseline that measured it.
		throughput("float32 td fps", current.Float32TimeDomainFPS, base.Pipeline.Float32TimeDomainFPS)
		allocs("float32 td allocs", current.Float32TimeDomainAllocsPerFrame, base.Pipeline.Float32TimeDomainAllocsPerFrame)
	}
	if base.Pipeline.Int16ReplayFPS > 0 {
		// Same compatibility rule for baselines predating the int16 path.
		throughput("int16 replay fps", current.Int16ReplayFPS, base.Pipeline.Int16ReplayFPS)
		allocs("int16 replay allocs", current.Int16ReplayAllocsPerFrame, base.Pipeline.Int16ReplayAllocsPerFrame)
	}

	// The float32 oracle is arithmetic, not scheduling: the measured
	// spectrum error exceeding the plan's analytic bound is a hard
	// failure on any host.
	if current.Float32MaxError > current.Float32ErrorBound {
		fmt.Printf("bench gate: %-22s %10.3g vs bound    %10.3g  REGRESSION\n",
			"float32 error", current.Float32MaxError, current.Float32ErrorBound)
		failures = append(failures, "float32 error bound")
	} else {
		fmt.Printf("bench gate: %-22s %10.3g vs bound    %10.3g  ok\n",
			"float32 error", current.Float32MaxError, current.Float32ErrorBound)
	}

	// Same discipline for the quantized path: the measured int16
	// spectrum error against the analytic ADC bound is arithmetic and
	// gates hard on any host.
	if current.Int16MaxError > current.Int16ErrorBound {
		fmt.Printf("bench gate: %-22s %10.3g vs bound    %10.3g  REGRESSION\n",
			"int16 error", current.Int16MaxError, current.Int16ErrorBound)
		failures = append(failures, "int16 error bound")
	} else {
		fmt.Printf("bench gate: %-22s %10.3g vs bound    %10.3g  ok\n",
			"int16 error", current.Int16MaxError, current.Int16ErrorBound)
	}

	// Replaying quantized codes skips synthesis entirely, so int16
	// replay must outrun even the float32 time-domain path; both
	// numbers come from this run on this host, making the ordering a
	// scheduling-noise-tolerant claim — but a serialized host can still
	// invert it, so it degrades to a warning there.
	if current.Int16ReplayFPS < current.Float32TimeDomainFPS {
		if current.SerializedHost {
			fmt.Printf("bench gate: %-22s %10.0f vs f32 td   %10.0f  WARNING (serialized host; not gating)\n",
				"int16 replay ordering", current.Int16ReplayFPS, current.Float32TimeDomainFPS)
		} else {
			fmt.Printf("bench gate: %-22s %10.0f vs f32 td   %10.0f  REGRESSION\n",
				"int16 replay ordering", current.Int16ReplayFPS, current.Float32TimeDomainFPS)
			failures = append(failures, "int16 replay ordering")
		}
	} else {
		fmt.Printf("bench gate: %-22s %10.0f vs f32 td   %10.0f  ok\n",
			"int16 replay ordering", current.Int16ReplayFPS, current.Float32TimeDomainFPS)
	}

	// Parallel scaling: the four-worker point of the speedup curve must
	// clear its floor — but only a genuinely multicore host can fail it;
	// with one schedulable CPU the pipeline has nothing to scale onto,
	// so the check degrades to a labeled warning.
	const speedupFloor = 1.5
	for _, p := range current.SpeedupCurve {
		if p.Workers != 4 || p.GOMAXPROCS < 4 {
			continue
		}
		status := "ok"
		if p.Speedup < speedupFloor {
			if current.SerializedHost {
				status = "WARNING (serialized host; not gating)"
			} else {
				status = "REGRESSION"
				failures = append(failures, "4-worker speedup")
			}
		}
		fmt.Printf("bench gate: %-22s %10.2fx vs floor   %9.2fx  %s\n",
			"4-worker speedup", p.Speedup, speedupFloor, status)
	}
	if current.SerializedHost {
		fmt.Printf("bench gate: serialized host (1 CPU) — speedup floor not applicable\n")
	}
	if len(failures) > 0 {
		return fmt.Errorf("pipeline regression vs %s: %s", path, strings.Join(failures, ", "))
	}
	fmt.Printf("bench gate: within %.0f%% of %s\n", maxRegress*100, path)
	return nil
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func paperFallRow(act motion.Activity) string {
	switch act {
	case motion.ActivityFall:
		return "31 / 33 detected"
	case motion.ActivitySitFloor:
		return "1 / 33 false positive"
	default:
		return "0 / 33"
	}
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
	collector.section = strings.Fields(title)[0]
}

func row(label, paper, measured string) {
	fmt.Printf("  %-34s paper: %-48s measured: %s\n", label, paper, measured)
	collector.rows[collector.section] = append(collector.rows[collector.section],
		reportRow{Label: label, Paper: paper, Measured: measured})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "witrack-bench:", err)
		os.Exit(1)
	}
}
