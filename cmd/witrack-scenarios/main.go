// Command witrack-scenarios runs the declarative scenario matrix — N
// scenarios × M device placements on the streaming pipeline — checks
// every scenario's expected-metric assertions, and optionally writes a
// machine-readable report (SCENARIOS.json) for CI to consume.
//
// With fixed seeds the report is byte-identical across runs; CI runs
// the matrix twice and diffs the two reports as a determinism gate.
// Timing (frames/sec per device) varies run to run and is therefore
// only included with -timing.
//
// Usage:
//
//	witrack-scenarios [-json SCENARIOS.json] [-only fall,pointing]
//	                  [-cells '^single-track/0$'] [-spec extra.json]
//	                  [-parallel 4] [-timing] [-list]
//
// -cells restricts the run to the scenario × device cells whose key
// "<scenario>/<deviceIndex>" matches the regexp, so CI can shard the
// N×M matrix across parallel jobs (each shard writes its own report;
// cells score identically regardless of which shard runs them).
//
// Exit status: 0 all assertions pass, 1 any scenario fails (or an
// execution error), 2 bad usage.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"time"

	"witrack/internal/scenario"
)

func main() {
	jsonPath := flag.String("json", "", "write the machine-readable report to this path")
	only := flag.String("only", "", "comma-separated scenario names to run (default: all)")
	cells := flag.String("cells", "", "regexp selecting scenario/deviceIndex cells to run (matrix sharding)")
	specPath := flag.String("spec", "", "JSON file with extra scenario specs to append to the canonical matrix")
	parallel := flag.Int("parallel", 0, "max concurrent scenario×device cells (0 = GOMAXPROCS)")
	timing := flag.Bool("timing", false, "include wall-clock frames/sec in the report (non-deterministic)")
	list := flag.Bool("list", false, "list scenario names and exit")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "witrack-scenarios: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	specs := scenario.Canonical()
	if *specPath != "" {
		extra, err := scenario.LoadSpecs(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-scenarios:", err)
			os.Exit(2)
		}
		specs = append(specs, extra...)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if seen[sp.Name] {
			fmt.Fprintf(os.Stderr, "witrack-scenarios: duplicate scenario name %q (a -spec entry shadows a canonical scenario?)\n", sp.Name)
			os.Exit(2)
		}
		seen[sp.Name] = true
	}

	if *list {
		for _, sp := range specs {
			fmt.Printf("%-14s %s\n", sp.Name, sp.Description)
		}
		return
	}

	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []scenario.Spec
		for _, sp := range specs {
			if want[sp.Name] {
				filtered = append(filtered, sp)
				delete(want, sp.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for name := range want {
				unknown = append(unknown, name)
			}
			fmt.Fprintf(os.Stderr, "witrack-scenarios: unknown scenario(s) in -only: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		specs = filtered
	}
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "witrack-scenarios: no scenarios selected")
		os.Exit(2)
	}
	var cellFilter *regexp.Regexp
	if *cells != "" {
		var err error
		if cellFilter, err = regexp.Compile(*cells); err != nil {
			fmt.Fprintln(os.Stderr, "witrack-scenarios: bad -cells regexp:", err)
			os.Exit(2)
		}
	}

	start := time.Now()
	rep, err := scenario.Run(context.Background(), specs, scenario.Options{
		Parallel: *parallel,
		Timing:   *timing,
		Cells:    cellFilter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "witrack-scenarios:", err)
		os.Exit(1)
	}

	out := bufio.NewWriter(os.Stdout)
	printReport(out, rep, *timing)
	fmt.Fprintf(out, "\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "witrack-scenarios: writing report:", err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-scenarios:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "witrack-scenarios: FAILED scenarios: %s\n", strings.Join(rep.Failed, ", "))
		os.Exit(1)
	}
}

// printReport renders the matrix outcome as a human table.
func printReport(out *bufio.Writer, rep *scenario.Report, timing bool) {
	fmt.Fprintf(out, "WiTrack scenario matrix — %d scenarios\n", len(rep.Scenarios))
	for _, res := range rep.Scenarios {
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(out, "\n== %-14s %s  (%s)\n", res.Name, verdict, res.Description)
		for _, d := range res.Devices {
			line := fmt.Sprintf("  device %d  sep %.2f m, height %.2f m, %d frames", d.Device, d.Separation, d.Height, d.Frames)
			if timing && d.FPS > 0 {
				line += fmt.Sprintf(", %.0f frames/s", d.FPS)
			}
			fmt.Fprintln(out, line)
		}
		for _, k := range res.Metrics.Keys() {
			fmt.Fprintf(out, "  %-24s %.4g\n", k, res.Metrics[k])
		}
		for _, a := range res.Assertions {
			fmt.Fprintf(out, "  %s\n", a.String())
		}
	}
}
