// Command witrack-spectro emits the data behind the paper's qualitative
// figures as CSV for plotting:
//
//	-fig 3a  raw spectrogram (time, distance, power)
//	-fig 3b  background-subtracted spectrogram
//	-fig 3c  contour + denoised contour (time, raw, denoised)
//	-fig 6   elevation traces for the four activities (time, activity, z)
//
// Usage:
//
//	witrack-spectro -fig 3a > fig3a.csv
//
// Exit status: 0 on success, 1 on a run or output error, 2 on invalid
// flags.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"witrack/internal/experiments"
)

var out *bufio.Writer

func main() {
	fig := flag.String("fig", "3a", "which figure to dump: 3a, 3b, 3c, 6")
	seed := flag.Int64("seed", 1, "simulation seed")
	stride := flag.Int("stride", 8, "emit every n-th frame (spectrograms)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "witrack-spectro: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *stride < 1 {
		fmt.Fprintf(os.Stderr, "witrack-spectro: -stride must be >= 1, got %d\n", *stride)
		os.Exit(2)
	}

	// The spectrogram dumps are tens of MB of CSV; buffer them and
	// surface write errors — a closed pipe or full disk must not exit 0.
	out = bufio.NewWriter(os.Stdout)

	switch *fig {
	case "3a", "3b", "3c":
		sr, err := experiments.SpectrogramDemo(*seed)
		check(err)
		switch *fig {
		case "3a":
			dumpSpectrogram(sr, true, *stride)
		case "3b":
			dumpSpectrogram(sr, false, *stride)
		default:
			fmt.Fprintln(out, "t,contour_raw_m,contour_denoised_m")
			for i := range sr.Times {
				fmt.Fprintf(out, "%.4f,%.3f,%.3f\n", sr.Times[i], sr.ContourRaw[i], sr.ContourDenoised[i])
			}
		}
	case "6":
		traces, err := experiments.ElevationTraces(*seed)
		check(err)
		fmt.Fprintln(out, "t,activity,z_tracked_m,z_truth_m")
		for _, tr := range traces {
			for i := range tr.Times {
				fmt.Fprintf(out, "%.4f,%s,%.3f,%.3f\n", tr.Times[i], tr.Activity, tr.Z[i], tr.TruthZ[i])
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "witrack-spectro: unknown -fig %q (use 3a, 3b, 3c, 6)\n", *fig)
		os.Exit(2)
	}
	check(out.Flush())
}

func dumpSpectrogram(sr *experiments.SpectrogramResult, raw bool, stride int) {
	s := sr.Subtracted
	if raw {
		s = sr.Raw
	}
	fmt.Fprintln(out, "t,distance_m,power")
	for i := 0; i < len(s.Frames); i += stride {
		t := float64(i) * s.FrameInterval
		for b, v := range s.Frames[i] {
			fmt.Fprintf(out, "%.4f,%.2f,%.4g\n", t, s.Distance(float64(b)), v)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "witrack-spectro:", err)
		os.Exit(1)
	}
}
