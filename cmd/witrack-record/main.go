// Command witrack-record captures scenario cells to .wtrace files: each
// single-trajectory scenario × device cell is compiled, simulated once,
// and its bit-identical per-antenna frame stream written to disk with
// the scenario spec embedded as provenance. The traces replay through
// witrack-replay (or core.TraceSource) without paying synthesis cost.
//
// After writing each trace the command replays it in-process and scores
// it — validating the round trip immediately — and -json writes those
// replay metrics as the snapshot (CORPUS.json) that witrack-replay
// -diff gates against.
//
// Usage:
//
//	witrack-record [-out DIR] [-json CORPUS.json] [-corpus]
//	               [-only a,b] [-spec extra.json] [-list]
//
// By default the canonical scenario matrix's recordable cells are
// captured; -corpus switches to the compact corpus set used for the
// checked-in regression corpus. The corpus-refresh workflow is:
//
//	go run ./cmd/witrack-record -corpus \
//	    -out internal/scenario/testdata/corpus \
//	    -json internal/scenario/testdata/corpus/CORPUS.json
//
// Exit status: 0 success, 1 execution error, 2 bad usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"witrack/internal/scenario"
)

func main() {
	outDir := flag.String("out", "corpus", "directory to write .wtrace files into (created if missing)")
	jsonPath := flag.String("json", "", "write the replay-metrics snapshot (CORPUS.json) to this path")
	corpus := flag.Bool("corpus", false, "record the compact corpus set instead of the canonical matrix")
	only := flag.String("only", "", "comma-separated scenario names to record (default: all recordable)")
	specPath := flag.String("spec", "", "JSON file with extra scenario specs to append")
	list := flag.Bool("list", false, "list recordable scenario names and exit")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "witrack-record: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	specs := scenario.Canonical()
	if *corpus {
		specs = scenario.Corpus()
	}
	if *specPath != "" {
		extra, err := scenario.LoadSpecs(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-record:", err)
			os.Exit(2)
		}
		specs = append(specs, extra...)
	}

	if *list {
		for _, sp := range specs {
			note := ""
			if err := sp.Recordable(); err != nil {
				note = "  (not recordable)"
			}
			fmt.Printf("%-14s %s%s\n", sp.Name, sp.Description, note)
		}
		return
	}

	explicit := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			explicit[strings.TrimSpace(name)] = true
		}
		var filtered []scenario.Spec
		for _, sp := range specs {
			if explicit[sp.Name] {
				filtered = append(filtered, sp)
				delete(explicit, sp.Name)
			}
		}
		if len(explicit) > 0 {
			var unknown []string
			for name := range explicit {
				unknown = append(unknown, name)
			}
			fmt.Fprintf(os.Stderr, "witrack-record: unknown scenario(s) in -only: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		specs = filtered
		// Explicitly requested scenarios must be recordable.
		for _, sp := range specs {
			if err := sp.Recordable(); err != nil {
				fmt.Fprintln(os.Stderr, "witrack-record:", err)
				os.Exit(2)
			}
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "witrack-record:", err)
		os.Exit(1)
	}

	var report scenario.ReplayReport
	var total int64
	for i := range specs {
		sp := &specs[i]
		if err := sp.Recordable(); err != nil {
			fmt.Printf("skip %-14s %v\n", sp.Name, err)
			continue
		}
		fleet := len(sp.Devices)
		if fleet == 0 {
			fleet = 1 // empty fleet means one default placement
		}
		for di := 0; di < fleet; di++ {
			name := fmt.Sprintf("%s-d%d.wtrace", sp.Name, di)
			path := filepath.Join(*outDir, name)
			res, size, raw, err := recordAndVerify(sp, di, path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "witrack-record:", err)
				os.Exit(1)
			}
			total += size
			res.Trace = name
			res.RawBytes = raw
			res.TraceBytes = size
			if size > 0 {
				res.CompressionRatio = float64(raw) / float64(size)
			}
			report.Traces = append(report.Traces, *res)
			fmt.Printf("wrote %-28s %6.1f KB  %5d frames  %6.1f KB raw  %4.1fx  (%s device %d)\n",
				name, float64(size)/1024, res.Frames, float64(raw)/1024, res.CompressionRatio, sp.Name, di)
		}
	}
	if len(report.Traces) == 0 {
		fmt.Fprintln(os.Stderr, "witrack-record: no recordable scenarios selected")
		os.Exit(2)
	}
	fmt.Printf("total %.1f KB across %d traces\n", float64(total)/1024, len(report.Traces))

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-record:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// recordAndVerify captures one cell to path, then replays the written
// file and returns the replay's scored result — proving on the spot
// that what landed on disk reproduces the run — together with the
// on-disk (compressed) and pre-compression encoded sizes. Cells whose
// device models an ADC (Radio.ADCBits > 0) are captured as quantized
// int16 sweep traces; all others record pre-transformed range bins.
func recordAndVerify(sp *scenario.Spec, deviceIndex int, path string) (*scenario.ReplayResult, int64, int64, error) {
	record := scenario.RecordCell
	if deviceIndex < len(sp.Devices) && sp.Devices[deviceIndex].Radio.ADCBits > 0 {
		record = scenario.RecordCellSweeps
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, 0, 0, err
	}
	_, raw, err := record(sp, deviceIndex, f)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, 0, 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, 0, 0, err
	}
	rf, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer rf.Close()
	res, err := scenario.ReplayTrace(context.Background(), rf)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("verifying %s: %w", path, err)
	}
	return res, st.Size(), raw, nil
}
