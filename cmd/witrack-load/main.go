// Command witrack-load soaks a witrack-svc daemon: it replays a trace
// corpus at N concurrent sessions, round after round, until a minimum
// duration has elapsed, then reports sessions × fps × fix-latency
// percentiles as JSON. Every served result is checked for determinism —
// all sessions replaying the same trace must agree bit-for-bit — and
// with -diff the agreed results are compared against a witrack-record
// snapshot (CORPUS.json), closing the live == replay == served parity
// chain.
//
// The JSON report keeps the deterministic part ("replay": the exact
// ReplayReport shape witrack-replay snapshots) separate from the
// wall-clock part ("timing"), so CI can diff the former across runs and
// ignore the latter.
//
// Usage:
//
//	witrack-load -mgmt http://host:port [-sessions n] [-min-duration d]
//	             [-pace] [-json out.json] [-diff CORPUS.json]
//	             [-sweeps] [-min-coalesced frac]
//	             [trace.wtrace...]
//
// With -pace each stream is spread over its recorded duration, so the
// served lag samples measure real fix latency; unpaced runs drive the
// daemon flat out and the percentiles measure throughput instead.
//
// With -sweeps the corpus gains a generated sweep-domain trace (the
// compact scenario.SweepCell, recorded in memory — raw sweeps do not
// compress well enough to check in): every served frame runs the full
// window + RFFT path, which is the workload the daemon's cross-session
// batch scheduler coalesces. The trace is replayed offline in-process
// first and that result seeds the determinism check, so every served
// session must match the offline replay bit-for-bit. -min-coalesced
// then asserts the aggregate multi-session coalescing fraction
// (coalesced transforms / submitted transforms across all summaries)
// reached the given floor.
//
// Exit status: 0 success, 1 session failure, non-deterministic serving,
// or snapshot drift, 2 bad usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"witrack/internal/scenario"
	"witrack/internal/svc"
	"witrack/internal/trace"
)

// loadedTrace is one corpus file plus the metadata pacing needs.
type loadedTrace struct {
	name     string
	data     []byte
	frames   int
	duration time.Duration
}

// Timing is the wall-clock half of the load report. Nothing in here is
// expected to be stable across runs.
type Timing struct {
	Sessions       int     `json:"sessions"`
	Concurrency    int     `json:"concurrency"`
	Rounds         int     `json:"rounds"`
	TotalFrames    int     `json:"total_frames"`
	WallSeconds    float64 `json:"wall_seconds"`
	AggregateFPS   float64 `json:"aggregate_fps"`
	Paced          bool    `json:"paced"`
	FixLatencyP50  float64 `json:"fix_latency_ms_p50"`
	FixLatencyP99  float64 `json:"fix_latency_ms_p99"`
	LatencySamples int     `json:"latency_samples"`
	// BatchSubmitted / BatchCoalesced aggregate the sessions' sweep-path
	// transforms routed through the daemon's cross-session batch
	// scheduler and how many rode a combined call with another session;
	// CoalescedFrac is their ratio. Zero without -sweeps (bin-domain
	// corpus traces perform no transforms).
	BatchSubmitted int64   `json:"batch_submitted,omitempty"`
	BatchCoalesced int64   `json:"batch_coalesced,omitempty"`
	CoalescedFrac  float64 `json:"coalesced_frac,omitempty"`
	// IngestBytes is the total compressed trace bytes streamed into the
	// daemon across all sessions; BytesPerFrame and IngestMBps derive
	// the per-frame ingest cost and the aggregate ingest bandwidth —
	// the numbers the quantized int16 encoding cuts roughly 4x.
	IngestBytes   int64   `json:"ingest_bytes"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	IngestMBps    float64 `json:"ingest_mb_per_s"`
}

// Report is the witrack-load JSON artifact (SVC_LOAD.json in CI).
type Report struct {
	// Replay is deterministic: per-trace results identical to a
	// single-process witrack-replay of the same files.
	Replay scenario.ReplayReport `json:"replay"`
	// Timing is wall-clock measurement; CI ignores it when diffing.
	Timing Timing `json:"timing"`
}

func main() {
	mgmt := flag.String("mgmt", "http://127.0.0.1:7514", "daemon management base URL")
	sessions := flag.Int("sessions", 8, "concurrent sessions per round")
	minDuration := flag.Duration("min-duration", 0, "keep launching rounds until this much wall time has elapsed")
	pace := flag.Bool("pace", false, "pace each stream over its recorded duration (real fix latency)")
	jsonPath := flag.String("json", "", "write the machine-readable load report to this path")
	diffPath := flag.String("diff", "", "compare served replay results against this snapshot (CORPUS.json) and fail on drift")
	sweeps := flag.Bool("sweeps", false, "add a generated sweep-domain trace whose served results must match its offline replay")
	minCoalesced := flag.Float64("min-coalesced", -1, "fail unless the aggregate multi-session coalescing fraction reaches this floor (requires -sweeps)")
	flag.Parse()
	if flag.NArg() == 0 && !*sweeps {
		fmt.Fprintln(os.Stderr, "witrack-load: no trace files given (and -sweeps not set)")
		flag.Usage()
		os.Exit(2)
	}
	if *sessions < 1 {
		fmt.Fprintln(os.Stderr, "witrack-load: -sessions must be at least 1")
		os.Exit(2)
	}
	if *minCoalesced >= 0 && !*sweeps {
		fmt.Fprintln(os.Stderr, "witrack-load: -min-coalesced needs -sweeps (bin-domain traces perform no transforms)")
		os.Exit(2)
	}

	// agreed[trace name] is the reference result for that trace; every
	// served session must match it bit-for-bit.
	agreed := make(map[string]*scenario.ReplayResult)

	traces := make([]loadedTrace, flag.NArg())
	for i, path := range flag.Args() {
		lt, err := loadTrace(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "witrack-load: %s: %v\n", path, err)
			os.Exit(1)
		}
		traces[i] = lt
	}
	if *sweeps {
		// Both sweep encodings soak: the float64 cell and its quantized
		// int16 twin, so the fused dequantize+window ingest path is
		// exercised (and coalesced) alongside the full-precision one.
		for _, sp := range []scenario.Spec{scenario.SweepCell(), scenario.SweepCellInt16()} {
			lt, offline, err := genSweepTrace(sp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "witrack-load: generating sweep trace %s: %v\n", sp.Name, err)
				os.Exit(1)
			}
			// Seed the determinism check with the in-process offline replay:
			// served-vs-offline parity becomes an assertion, not just
			// served-vs-served agreement.
			offline.Trace = lt.name
			agreed[lt.name] = offline
			traces = append(traces, lt)
			fmt.Printf("witrack-load: generated %s (%d sweep-domain frames, %.1f KiB), offline reference computed\n",
				lt.name, lt.frames, float64(len(lt.data))/1024)
		}
	}

	client := &svc.Client{Mgmt: *mgmt}
	info, err := client.Info()
	if err != nil {
		fmt.Fprintln(os.Stderr, "witrack-load: daemon unreachable:", err)
		os.Exit(1)
	}
	fmt.Printf("witrack-load: daemon at %s (ingest %s, pool %d), %d traces, %d sessions/round\n",
		*mgmt, info.IngestAddr, info.PoolSize, len(traces), *sessions)

	var lagMS []float64
	timing := Timing{Concurrency: *sessions, Paced: *pace}
	start := time.Now()

	for round := 1; timing.Rounds == 0 || time.Since(start) < *minDuration; round++ {
		results, summaries, err := runRound(client, info.IngestAddr, traces, *sessions, *pace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-load:", err)
			os.Exit(1)
		}
		timing.Rounds = round
		timing.Sessions += *sessions
		for i, res := range results {
			name := traces[i%len(traces)].name
			timing.TotalFrames += res.Frames
			timing.IngestBytes += int64(len(traces[i%len(traces)].data))
			if w, ok := agreed[name]; ok {
				if err := sameBits(w, res); err != nil {
					fmt.Fprintf(os.Stderr, "witrack-load: %s served non-deterministically in round %d: %v\n", name, round, err)
					os.Exit(1)
				}
			} else {
				res.Trace = name
				agreed[name] = res
			}
		}
		for _, sum := range summaries {
			if sum.Timing != nil {
				lagMS = append(lagMS, sum.Timing.LagMS...)
				timing.BatchSubmitted += sum.Timing.BatchSubmitted
				timing.BatchCoalesced += sum.Timing.BatchCoalesced
			}
		}
	}

	timing.WallSeconds = time.Since(start).Seconds()
	if timing.WallSeconds > 0 {
		timing.AggregateFPS = float64(timing.TotalFrames) / timing.WallSeconds
	}
	timing.FixLatencyP50 = percentile(lagMS, 50)
	timing.FixLatencyP99 = percentile(lagMS, 99)
	timing.LatencySamples = len(lagMS)
	if timing.BatchSubmitted > 0 {
		timing.CoalescedFrac = float64(timing.BatchCoalesced) / float64(timing.BatchSubmitted)
	}
	if timing.TotalFrames > 0 {
		timing.BytesPerFrame = float64(timing.IngestBytes) / float64(timing.TotalFrames)
	}
	if timing.WallSeconds > 0 {
		timing.IngestMBps = float64(timing.IngestBytes) / 1e6 / timing.WallSeconds
	}

	var report Report
	report.Timing = timing
	names := make([]string, 0, len(agreed))
	for name := range agreed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		report.Replay.Traces = append(report.Replay.Traces, *agreed[name])
	}

	fmt.Printf("witrack-load: %d sessions over %d rounds in %.1fs — %d frames, %.1f fps aggregate, fix latency p50 %.1f ms / p99 %.1f ms (paced=%v)\n",
		timing.Sessions, timing.Rounds, timing.WallSeconds, timing.TotalFrames,
		timing.AggregateFPS, timing.FixLatencyP50, timing.FixLatencyP99, timing.Paced)
	fmt.Printf("witrack-load: ingested %.1f MB (%.0f bytes/frame, %.2f MB/s)\n",
		float64(timing.IngestBytes)/1e6, timing.BytesPerFrame, timing.IngestMBps)
	if timing.BatchSubmitted > 0 {
		fmt.Printf("witrack-load: %d sweep transforms submitted, %d coalesced across sessions (%.1f%%)\n",
			timing.BatchSubmitted, timing.BatchCoalesced, 100*timing.CoalescedFrac)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-load:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *diffPath != "" {
		snap, err := scenario.LoadReport(*diffPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-load:", err)
			os.Exit(1)
		}
		if n := scenario.DiffReports(os.Stderr, snap, &report.Replay); n > 0 {
			fmt.Fprintf(os.Stderr, "witrack-load: %d difference(s) against snapshot %s\n", n, *diffPath)
			os.Exit(1)
		}
		fmt.Printf("served results match snapshot %s (%d traces)\n", *diffPath, len(report.Replay.Traces))
	}

	if *minCoalesced >= 0 {
		if timing.CoalescedFrac < *minCoalesced {
			fmt.Fprintf(os.Stderr, "witrack-load: coalescing fraction %.3f below the -min-coalesced floor %.3f (%d/%d transforms)\n",
				timing.CoalescedFrac, *minCoalesced, timing.BatchCoalesced, timing.BatchSubmitted)
			os.Exit(1)
		}
		fmt.Printf("coalescing fraction %.3f meets the %.3f floor\n", timing.CoalescedFrac, *minCoalesced)
	}
}

// genSweepTrace records the given sweep cell into memory and replays
// it offline in-process, returning both the trace and the reference
// result every served session must reproduce bit-for-bit.
func genSweepTrace(sp scenario.Spec) (loadedTrace, *scenario.ReplayResult, error) {
	var buf bytes.Buffer
	frames, _, err := scenario.RecordCellSweeps(&sp, 0, &buf)
	if err != nil {
		return loadedTrace{}, nil, err
	}
	res, err := scenario.ReplayTrace(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		return loadedTrace{}, nil, fmt.Errorf("offline reference replay: %w", err)
	}
	tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return loadedTrace{}, nil, err
	}
	return loadedTrace{
		name:     sp.Name + ".wtrace",
		data:     buf.Bytes(),
		frames:   frames,
		duration: time.Duration(float64(frames) * tr.Header().Interval * float64(time.Second)),
	}, res, nil
}

// runRound drives one round of n concurrent sessions, round-robin over
// the traces, and returns each session's result and summary in launch
// order. Sessions are deleted afterwards so long soaks never hit the
// daemon's session cap.
func runRound(client *svc.Client, ingestAddr string, traces []loadedTrace, n int, pace bool) ([]*scenario.ReplayResult, []*svc.CloseSummary, error) {
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		lt := traces[i%len(traces)]
		stats, err := client.CreateSession(svc.CreateRequest{Name: lt.name})
		if err != nil {
			return nil, nil, fmt.Errorf("creating session: %w", err)
		}
		ids[i] = stats.ID
	}
	defer func() {
		for _, id := range ids {
			client.DeleteSession(id)
		}
	}()

	results := make([]*scenario.ReplayResult, n)
	summaries := make([]*svc.CloseSummary, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := traces[i%len(traces)]
			opts := svc.IngestOptions{}
			if pace {
				opts.PaceOver = lt.duration
			}
			sum, err := svc.IngestTCP(ingestAddr, ids[i], lt.data, opts)
			if err != nil {
				errs[i] = fmt.Errorf("session %s (%s): %w", ids[i], lt.name, err)
				return
			}
			if !sum.OK {
				errs[i] = fmt.Errorf("session %s (%s) failed: %s", ids[i], lt.name, sum.Error)
				return
			}
			results[i] = sum.Result
			summaries[i] = sum
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, summaries, nil
}

// loadTrace reads a .wtrace and scans it once to learn its frame count
// and recorded duration (for pacing).
func loadTrace(path string) (loadedTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return loadedTrace{}, err
	}
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return loadedTrace{}, err
	}
	frames := 0
	if tr.Header().Sample == trace.SampleInt16 {
		var dst [][]int16
		for {
			if dst, _, err = tr.ReadFrameInt16Into(dst, nil); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return loadedTrace{}, err
			}
			frames++
		}
	} else {
		for {
			if _, _, err := tr.ReadFrameTruthsInto(nil, nil); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return loadedTrace{}, err
			}
			frames++
		}
	}
	return loadedTrace{
		name:     filepath.Base(path),
		data:     data,
		frames:   frames,
		duration: time.Duration(float64(frames) * tr.Header().Interval * float64(time.Second)),
	}, nil
}

// sameBits compares two served results for the same trace; any
// difference means the daemon served non-deterministically.
func sameBits(a, b *scenario.ReplayResult) error {
	if a.Name != b.Name || a.Device != b.Device {
		return fmt.Errorf("identity (%s, device %d) != (%s, device %d)", a.Name, a.Device, b.Name, b.Device)
	}
	if a.Frames != b.Frames || a.Skips != b.Skips {
		return fmt.Errorf("frames/skips %d/%d != %d/%d", a.Frames, a.Skips, b.Frames, b.Skips)
	}
	if len(a.Metrics) != len(b.Metrics) {
		return fmt.Errorf("%d metrics != %d metrics", len(a.Metrics), len(b.Metrics))
	}
	for k, av := range a.Metrics {
		bv, ok := b.Metrics[k]
		if !ok {
			return fmt.Errorf("metric %s missing", k)
		}
		if math.Float64bits(av) != math.Float64bits(bv) {
			return fmt.Errorf("metric %s: %.17g != %.17g", k, av, bv)
		}
	}
	return nil
}

// percentile returns the nearest-rank p-th percentile; 0 on no samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
