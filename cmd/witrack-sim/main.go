// Command witrack-sim runs one simulated WiTrack tracking session and
// prints the 3D trace with per-axis error statistics against the
// ground-truth trajectory (the VICON-equivalent oracle).
//
// Usage:
//
//	witrack-sim [-duration 30] [-seed 1] [-los] [-sep 1.0] [-every 1.0] [-csv]
//
// Exit status: 0 on success, 1 on a run or output error (including a
// tracker that never acquires), 2 on invalid flags.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"witrack"
	"witrack/internal/dsp"
)

func main() {
	duration := flag.Float64("duration", 30, "seconds of motion to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	los := flag.Bool("los", false, "line of sight (device inside the room) instead of through-wall")
	sep := flag.Float64("sep", 1.0, "antenna separation in meters")
	every := flag.Float64("every", 1.0, "seconds between printed trace rows")
	csv := flag.Bool("csv", false, "emit the full trace as CSV instead of a summary")
	flag.Parse()

	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "witrack-sim: "+format+"\n", args...)
		os.Exit(code)
	}
	if flag.NArg() > 0 {
		fail(2, "unexpected arguments: %v", flag.Args())
	}
	if *duration <= 0 {
		fail(2, "-duration must be positive, got %g", *duration)
	}
	if *sep <= 0 {
		fail(2, "-sep must be positive, got %g", *sep)
	}
	if *every <= 0 {
		fail(2, "-every must be positive, got %g", *every)
	}

	cfg := witrack.DefaultConfig()
	cfg.Seed = *seed
	cfg.Array = witrack.NewTArray(*sep, 1.5)
	cfg.Scene = witrack.StandardScene(!*los)

	dev, err := witrack.NewDevice(cfg)
	if err != nil {
		fail(1, "%v", err)
	}
	walk := witrack.NewRandomWalk(witrack.DefaultWalkConfig(
		witrack.StandardRegion(), cfg.Subject.CenterHeight(), *duration, *seed+100))
	res := dev.Run(walk)

	// Buffer the (possibly large) trace and surface write errors — a
	// closed pipe or full disk must not exit 0.
	out := bufio.NewWriter(os.Stdout)
	flush := func() {
		if err := out.Flush(); err != nil {
			fail(1, "writing output: %v", err)
		}
	}

	if *csv {
		fmt.Fprintln(out, "t,est_x,est_y,est_z,truth_x,truth_y,truth_z,moving")
		for _, s := range res.Samples {
			if !s.Valid {
				continue
			}
			est := witrack.CompensateSurfaceDepth(s.Pos, cfg.Array.Tx, cfg.Subject.SurfaceDepth)
			fmt.Fprintf(out, "%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%v\n",
				s.T, est.X, est.Y, est.Z, s.Truth.X, s.Truth.Y, s.Truth.Z, s.Moving)
		}
		flush()
		return
	}

	mode := "through-wall"
	if *los {
		mode = "line-of-sight"
	}
	fmt.Fprintf(out, "WiTrack simulation: %s, %.0f s, antenna separation %.2f m, seed %d\n",
		mode, *duration, *sep, *seed)
	fmt.Fprintf(out, "radio: %.2f-%.2f GHz sweep (%.2f GHz bandwidth), resolution %.1f cm, %d Hz frame rate\n\n",
		cfg.Radio.StartFreq/1e9, (cfg.Radio.StartFreq+cfg.Radio.Bandwidth)/1e9,
		cfg.Radio.Bandwidth/1e9, cfg.Radio.Resolution()*100,
		int(1/cfg.Radio.FrameInterval()))

	fmt.Fprintf(out, "%6s  %24s  %24s  %8s\n", "t(s)", "estimate (x,y,z)", "truth (x,y,z)", "err(cm)")
	var xs, ys, zs []float64
	next := 0.0
	for _, s := range res.Samples {
		if !s.Valid || s.T < 2 {
			continue
		}
		est := witrack.CompensateSurfaceDepth(s.Pos, cfg.Array.Tx, cfg.Subject.SurfaceDepth)
		xs = append(xs, math.Abs(est.X-s.Truth.X))
		ys = append(ys, math.Abs(est.Y-s.Truth.Y))
		zs = append(zs, math.Abs(est.Z-s.Truth.Z))
		if s.T >= next {
			fmt.Fprintf(out, "%6.1f  %24s  %24s  %8.1f\n", s.T, est.String(), s.Truth.String(), est.Dist(s.Truth)*100)
			next = s.T + *every
		}
	}
	if len(xs) == 0 {
		flush()
		fail(1, "no valid samples (tracker never acquired)")
	}
	fmt.Fprintf(out, "\nper-axis error: median %.1f / %.1f / %.1f cm, 90th pct %.1f / %.1f / %.1f cm (x/y/z)\n",
		dsp.Median(append([]float64(nil), xs...))*100,
		dsp.Median(append([]float64(nil), ys...))*100,
		dsp.Median(append([]float64(nil), zs...))*100,
		dsp.Percentile(append([]float64(nil), xs...), 90)*100,
		dsp.Percentile(append([]float64(nil), ys...), 90)*100,
		dsp.Percentile(append([]float64(nil), zs...), 90)*100)
	fmt.Fprintf(out, "processing: %v total for %d frames (%.0f µs/frame; paper budget 75 ms)\n",
		res.ProcessingTime.Round(1e6), res.Frames,
		float64(res.ProcessingTime.Microseconds())/float64(res.Frames))
	flush()
}
