// Command witrack-svc is the multi-tenant tracking daemon: a long-lived
// process that serves many concurrent trace-replay sessions over one
// shared worker pool, one decoded-frame arena, and the process-wide FFT
// plan cache. Sessions are created over the management HTTP API and fed
// framed .wtrace streams over the TCP ingest plane (or POSTed over
// HTTP); each session scores its stream with the exact replay path
// witrack-replay uses, so served metrics are bit-identical to a
// single-process replay of the same bytes.
//
// Usage:
//
//	witrack-svc [-ingest host:port] [-mgmt host:port] [-pool n]
//	            [-max-sessions n] [-queue-depth n]
//	            [-shed-after d] [-frame-deadline d]
//	            [-gather-window d] [-max-batch n]
//
// Management API (all JSON):
//
//	GET    /healthz              liveness
//	GET    /info                 ingest address, session counts, pool size
//	POST   /sessions             create a session (svc.CreateRequest body)
//	GET    /sessions             list all sessions' stats
//	GET    /sessions/{id}        one session's stats
//	DELETE /sessions/{id}        cancel and remove a session
//	POST   /sessions/{id}/ingest HTTP ingest: raw .wtrace body → close summary
//
// SIGINT/SIGTERM shut the daemon down gracefully: listeners close, every
// session is cancelled with a descriptive close summary, and the process
// exits once the serving goroutines drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"witrack/internal/svc"
)

func main() {
	ingest := flag.String("ingest", "127.0.0.1:7513", "TCP ingest listen address (port 0 picks a free port)")
	mgmt := flag.String("mgmt", "127.0.0.1:7514", "management HTTP listen address")
	pool := flag.Int("pool", 0, "shared worker-pool slots across all sessions (0 = default)")
	maxSessions := flag.Int("max-sessions", 0, "maximum tracked sessions (0 = default)")
	queueDepth := flag.Int("queue-depth", 0, "per-session ingest queue depth, in 32 KiB chunks (0 = default)")
	shedAfter := flag.Duration("shed-after", 0, "patience before a full ingest queue sheds its session (0 = default)")
	frameDeadline := flag.Duration("frame-deadline", 0, "per-session stall watchdog; negative disables (0 = default)")
	gatherWindow := flag.Duration("gather-window", 0, "how long a sweep-path FFT waits for other sessions to join its batch (0 = default)")
	maxBatch := flag.Int("max-batch", 0, "sweep segments per combined FFT call before it executes early (0 = default)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "witrack-svc: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	srv := svc.NewServer(svc.Config{
		PoolSize:      *pool,
		MaxSessions:   *maxSessions,
		QueueDepth:    *queueDepth,
		ShedAfter:     *shedAfter,
		FrameDeadline: *frameDeadline,
		GatherWindow:  *gatherWindow,
		MaxBatch:      *maxBatch,
	})
	if err := srv.Start(*ingest, *mgmt); err != nil {
		fmt.Fprintln(os.Stderr, "witrack-svc:", err)
		os.Exit(1)
	}
	fmt.Printf("witrack-svc: ingest on %s, management on http://%s\n", srv.IngestAddr(), srv.MgmtAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("witrack-svc: %s, shutting down\n", s)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "witrack-svc: shutdown:", err)
		os.Exit(1)
	}
}
