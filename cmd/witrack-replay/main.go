// Command witrack-replay streams recorded .wtrace files back through
// the tracking pipeline and emits the same metrics the scenario runner
// scores — without paying synthesis cost. Each trace carries its
// scenario spec as provenance, so the replaying device is rebuilt
// exactly as recorded (radio, array, seeds, background calibration);
// for a fixed trace the metrics are bit-reproducible.
//
// With -diff the results are compared against a recorded snapshot
// (CORPUS.json from witrack-record): any numeric drift — a changed
// metric value, frame count, or trace set — fails with exit 1. CI runs
// this over the checked-in golden corpus as the replay regression gate.
//
// With -recover, CRC-damaged records are resynchronized past instead
// of aborting the replay; each result reports its skip count, and the
// run fails only when a trace skips more than -max-skips records.
//
// Usage:
//
//	witrack-replay [-json out.json] [-diff CORPUS.json] [-recover [-max-skips n]] trace.wtrace...
//
// Exit status: 0 success, 1 replay error, snapshot mismatch, or
// corruption beyond -max-skips, 2 bad usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"witrack/internal/scenario"
)

func main() {
	jsonPath := flag.String("json", "", "write the machine-readable replay report to this path")
	diffPath := flag.String("diff", "", "compare replay metrics against this snapshot (CORPUS.json) and fail on drift")
	recoverFlag := flag.Bool("recover", false, "resynchronize past CRC-damaged records instead of aborting")
	maxSkips := flag.Int("max-skips", 0, "with -recover: fail when a trace skips more than this many damaged records")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "witrack-replay: no trace files given")
		flag.Usage()
		os.Exit(2)
	}

	var report scenario.ReplayReport
	tooCorrupt := false
	for _, path := range flag.Args() {
		res, err := replayFile(path, scenario.ReplayOptions{Recover: *recoverFlag})
		if err != nil {
			fmt.Fprintf(os.Stderr, "witrack-replay: %s: %v\n", path, err)
			os.Exit(1)
		}
		res.Trace = filepath.Base(path)
		report.Traces = append(report.Traces, *res)
		fmt.Printf("== %-28s %s (device %d), %d frames\n", res.Trace, res.Name, res.Device, res.Frames)
		if res.Skips > 0 {
			fmt.Printf("  %-24s %d damaged record(s) skipped\n", "skips", res.Skips)
			if res.Skips > *maxSkips {
				tooCorrupt = true
				fmt.Fprintf(os.Stderr, "witrack-replay: %s: %d skipped records exceed -max-skips %d\n", path, res.Skips, *maxSkips)
			}
		}
		for _, k := range res.Metrics.Keys() {
			fmt.Printf("  %-24s %.4g\n", k, res.Metrics[k])
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-replay:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *diffPath != "" {
		snap, err := scenario.LoadReport(*diffPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "witrack-replay:", err)
			os.Exit(1)
		}
		if n := scenario.DiffReports(os.Stderr, snap, &report); n > 0 {
			fmt.Fprintf(os.Stderr, "witrack-replay: %d difference(s) against snapshot %s\n", n, *diffPath)
			os.Exit(1)
		}
		fmt.Printf("replay matches snapshot %s (%d traces)\n", *diffPath, len(report.Traces))
	}
	if tooCorrupt {
		os.Exit(1)
	}
}

func replayFile(path string, opts scenario.ReplayOptions) (*scenario.ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.ReplayTraceOpts(context.Background(), f, opts)
}
